package cache_test

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"spanners/internal/gen"
	"spanners/spanner"
	"spanners/spanner/cache"
)

// countingCompile wraps the real compilation with an invocation counter
// and an optional gate that holds every compilation until released — the
// instrument that makes single-flight observable.
type countingCompile struct {
	calls atomic.Int64
	gate  chan struct{} // non-nil: compilations block here first
}

func (cc *countingCompile) fn(q *spanner.Query, mode spanner.Mode) (*spanner.Spanner, error) {
	cc.calls.Add(1)
	if cc.gate != nil {
		<-cc.gate
	}
	return q.Compile(spanner.WithMode(mode))
}

func TestGetCompilesOnceAndHits(t *testing.T) {
	cc := &countingCompile{}
	c := cache.New(cache.Config{Compile: cc.fn})
	ctx := context.Background()

	s1, err := c.Get(ctx, `/!x{a+}b/`, spanner.ModeStrict)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := c.Get(ctx, `/!x{a+}b/`, spanner.ModeStrict)
	if err != nil {
		t.Fatal(err)
	}
	if s1 != s2 {
		t.Fatal("second Get must return the cached spanner")
	}
	if n := cc.calls.Load(); n != 1 {
		t.Fatalf("compile ran %d times, want 1", n)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss / 1 entry", st)
	}

	// The mode is part of the key: a lazy request compiles separately.
	s3, err := c.Get(ctx, `/!x{a+}b/`, spanner.ModeLazy)
	if err != nil {
		t.Fatal(err)
	}
	if s3 == s1 {
		t.Fatal("lazy and strict requests must not share an entry")
	}
	if n := cc.calls.Load(); n != 2 {
		t.Fatalf("compile ran %d times after a mode change, want 2", n)
	}
}

func TestCanonicalKeying(t *testing.T) {
	cc := &countingCompile{}
	c := cache.New(cache.Config{Compile: cc.fn})
	ctx := context.Background()

	// Syntactic variants of one query: whitespace, escaping (/\d/ vs
	// /\\d/), all normalize to the same canonical key.
	variants := []string{
		`union(/!x{\d+}/, /a/)`,
		`union( /!x{\d+}/ , /a/ )`,
		"union(\n/!x{\\\\d+}/,\t/a/)",
	}
	var first *spanner.Spanner
	for i, src := range variants {
		s, err := c.Get(ctx, src, spanner.ModeStrict)
		if err != nil {
			t.Fatalf("variant %d: %v", i, err)
		}
		if first == nil {
			first = s
		} else if s != first {
			t.Fatalf("variant %d missed the cache", i)
		}
	}
	if n := cc.calls.Load(); n != 1 {
		t.Fatalf("compile ran %d times across canonical variants, want 1", n)
	}

	canon, err := cache.Canonicalize(variants[1])
	if err != nil {
		t.Fatal(err)
	}
	if want := spanner.MustParseQuery(variants[0]).String(); canon != want {
		t.Fatalf("Canonicalize = %q, want %q", canon, want)
	}
}

// TestSingleFlightUnderContention pins the thundering-herd contract:
// many concurrent Gets for one (canonically identical) query run exactly
// one compilation, everyone receives the same spanner, and nobody errors.
func TestSingleFlightUnderContention(t *testing.T) {
	cc := &countingCompile{gate: make(chan struct{})}
	c := cache.New(cache.Config{Compile: cc.fn})

	const goroutines = 32
	var (
		wg       sync.WaitGroup
		started  sync.WaitGroup
		spanners [goroutines]*spanner.Spanner
		errs     [goroutines]error
	)
	started.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			started.Done()
			// Half the callers use a syntactic variant; single-flight must
			// still coalesce them through the canonical key.
			src := `/!x{a+}/`
			if g%2 == 1 {
				src = `  /!x{a+}/  `
			}
			spanners[g], errs[g] = c.Get(context.Background(), src, spanner.ModeLazy)
		}(g)
	}
	started.Wait()
	time.Sleep(10 * time.Millisecond) // let the herd pile onto the flight
	close(cc.gate)
	wg.Wait()

	for g := 0; g < goroutines; g++ {
		if errs[g] != nil {
			t.Fatalf("goroutine %d: %v", g, errs[g])
		}
		if spanners[g] != spanners[0] {
			t.Fatalf("goroutine %d received a different spanner", g)
		}
	}
	if n := cc.calls.Load(); n != 1 {
		t.Fatalf("compile ran %d times under contention, want exactly 1", n)
	}
	st := c.Stats()
	if st.Misses != 1 || st.Hits != goroutines-1 {
		t.Fatalf("stats = %+v, want 1 miss and %d hits", st, goroutines-1)
	}
}

func TestEvictionOrderIsLRU(t *testing.T) {
	cc := &countingCompile{}
	c := cache.New(cache.Config{MaxEntries: 3, MaxBytes: -1, Compile: cc.fn})
	ctx := context.Background()

	get := func(src string) {
		t.Helper()
		if _, err := c.Get(ctx, src, spanner.ModeStrict); err != nil {
			t.Fatal(err)
		}
	}
	get(`/a/`)
	get(`/b/`)
	get(`/c/`)
	get(`/a/`) // refresh a: LRU order is now b < c < a
	get(`/d/`) // evicts b

	if st := c.Stats(); st.Evictions != 1 || st.Entries != 3 {
		t.Fatalf("stats = %+v, want 1 eviction / 3 entries", st)
	}
	var got []string
	for _, e := range c.Entries() {
		got = append(got, e.Query)
	}
	sort.Strings(got)
	if fmt.Sprint(got) != fmt.Sprint([]string{"/a/", "/c/", "/d/"}) {
		t.Fatalf("resident entries %v, want the LRU victim /b/ gone", got)
	}

	// Entries() is MRU-first.
	if e := c.Entries(); e[0].Query != "/d/" {
		t.Fatalf("MRU entry = %q, want /d/", e[0].Query)
	}

	before := cc.calls.Load()
	get(`/b/`) // must recompile: it was evicted
	if n := cc.calls.Load(); n != before+1 {
		t.Fatalf("evicted entry did not recompile (calls %d -> %d)", before, n)
	}
}

func TestByteBoundEviction(t *testing.T) {
	c := cache.New(cache.Config{MaxEntries: -1, MaxBytes: 1}) // absurdly tight
	ctx := context.Background()
	if _, err := c.Get(ctx, `/a/`, spanner.ModeStrict); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get(ctx, `/b/`, spanner.ModeStrict); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	// Every entry exceeds one byte, but the newest always stays: one
	// oversized query must not make the cache refuse everything.
	if st.Entries != 1 || st.Evictions != 1 {
		t.Fatalf("stats = %+v, want exactly the newest entry resident", st)
	}
	if e := c.Entries(); len(e) != 1 || e[0].Query != "/b/" {
		t.Fatalf("resident = %v, want only /b/", e)
	}
}

func TestErrorsAreNotCached(t *testing.T) {
	cc := &countingCompile{}
	c := cache.New(cache.Config{Compile: cc.fn})
	ctx := context.Background()

	if _, err := c.Get(ctx, `union(`, spanner.ModeStrict); err == nil {
		t.Fatal("parse error must surface")
	}
	if st := c.Stats(); st.Entries != 0 || st.Misses != 0 {
		t.Fatalf("a parse error must not touch the cache: %+v", st)
	}

	// A query that parses but fails to compile (unbound projection).
	bad := `project[nope](/!x{a}/)`
	if _, err := c.Get(ctx, bad, spanner.ModeStrict); err == nil {
		t.Fatal("compile error must surface")
	}
	st := c.Stats()
	if st.Entries != 0 || st.Errors != 1 {
		t.Fatalf("stats after compile error = %+v, want 0 entries / 1 error", st)
	}
	// Errors are not negative-cached: a retry compiles again.
	before := cc.calls.Load()
	if _, err := c.Get(ctx, bad, spanner.ModeStrict); err == nil {
		t.Fatal("compile error must surface again")
	}
	if n := cc.calls.Load(); n != before+1 {
		t.Fatal("failed compilation must be retried, not negative-cached")
	}
}

func TestJoiningWaiterHonorsContext(t *testing.T) {
	cc := &countingCompile{gate: make(chan struct{})}
	c := cache.New(cache.Config{Compile: cc.fn})

	winner := make(chan error, 1)
	go func() {
		_, err := c.Get(context.Background(), `/a+/`, spanner.ModeStrict)
		winner <- err
	}()
	// Wait until the flight is registered.
	for c.Stats().InFlight == 0 {
		time.Sleep(time.Millisecond)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.Get(ctx, `/a+/`, spanner.ModeStrict); !errors.Is(err, context.Canceled) {
		t.Fatalf("joining waiter returned %v, want context.Canceled", err)
	}

	close(cc.gate)
	if err := <-winner; err != nil {
		t.Fatalf("winning compilation failed: %v", err)
	}
	// The abandoned waiter must not have poisoned the entry.
	if _, err := c.Get(context.Background(), `/a+/`, spanner.ModeStrict); err != nil {
		t.Fatal(err)
	}
	if n := cc.calls.Load(); n != 1 {
		t.Fatalf("compile ran %d times, want 1", n)
	}
}

// TestCompilePanicDoesNotWedgeKey pins the single-flight failure mode a
// daemon cannot afford: a panic inside the compilation must surface as an
// error to the winner and every joined waiter, leave the flight
// deregistered (so the key recovers on the next Get), and cache nothing.
func TestCompilePanicDoesNotWedgeKey(t *testing.T) {
	var calls atomic.Int64
	c := cache.New(cache.Config{Compile: func(q *spanner.Query, mode spanner.Mode) (*spanner.Spanner, error) {
		if calls.Add(1) == 1 {
			panic("injected compile bug")
		}
		return q.Compile(spanner.WithMode(mode))
	}})

	if _, err := c.Get(context.Background(), `/a+/`, spanner.ModeStrict); err == nil ||
		!strings.Contains(err.Error(), "injected compile bug") {
		t.Fatalf("err = %v, want the panic surfaced as an error", err)
	}
	st := c.Stats()
	if st.Entries != 0 || st.InFlight != 0 || st.Errors != 1 {
		t.Fatalf("stats after compile panic = %+v, want no entry, no stuck flight, 1 error", st)
	}

	// The key must recover: the next Get compiles fresh and succeeds
	// promptly (a wedged flight would block it until ctx expired).
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := c.Get(ctx, `/a+/`, spanner.ModeStrict); err != nil {
		t.Fatalf("key did not recover after a compile panic: %v", err)
	}
}

// TestSharedLazySpannerConcurrentRequests pins the serving scenario end to
// end: one cached lazy-mode spanner handed to concurrent "requests" must
// produce exactly the serial match sets, with the on-the-fly determinizer
// shared between them (run under -race in CI).
func TestSharedLazySpannerConcurrentRequests(t *testing.T) {
	c := cache.New(cache.Config{})
	src := "/" + gen.Figure1Pattern() + "/"

	// Reference: a private spanner, serially.
	ref := spanner.MustCompile(gen.Figure1Pattern())
	docs := make([][]byte, 16)
	want := make([][]string, len(docs))
	for i := range docs {
		docs[i] = gen.Contacts(25, int64(i))
		ref.Enumerate(docs[i], func(m *spanner.Match) bool {
			want[i] = append(want[i], m.Key())
			return true
		})
		if len(want[i]) == 0 {
			t.Fatalf("doc %d: reference found no matches; test would be vacuous", i)
		}
	}

	var wg sync.WaitGroup
	for r := 0; r < 8; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			s, err := c.Get(context.Background(), src, spanner.ModeLazy)
			if err != nil {
				t.Error(err)
				return
			}
			for i, doc := range docs {
				var got []string
				s.Enumerate(doc, func(m *spanner.Match) bool {
					got = append(got, m.Key())
					return true
				})
				if fmt.Sprint(got) != fmt.Sprint(want[i]) {
					t.Errorf("request %d doc %d: matches diverge from serial reference", r, i)
					return
				}
			}
		}(r)
	}
	wg.Wait()

	if st := c.Stats(); st.Misses != 1 {
		t.Fatalf("stats = %+v, want a single compilation across all requests", st)
	}
	// The shared lazy spanner's discovery progress is visible per entry.
	if e := c.Entries(); len(e) != 1 || e[0].DetStates == 0 {
		t.Fatalf("entries = %+v, want one entry with discovered states", e)
	}
}

func TestPurge(t *testing.T) {
	c := cache.New(cache.Config{})
	ctx := context.Background()
	if _, err := c.Get(ctx, `/a/`, spanner.ModeStrict); err != nil {
		t.Fatal(err)
	}
	c.Purge()
	if st := c.Stats(); st.Entries != 0 || st.Bytes != 0 {
		t.Fatalf("stats after Purge = %+v", st)
	}
	if _, err := c.Get(ctx, `/a/`, spanner.ModeStrict); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Misses != 2 {
		t.Fatalf("purged entry must recompile: %+v", st)
	}
}
