package spanner_test

import (
	"bytes"
	"fmt"
	"sort"
	"strings"
	"sync"
	"testing"

	"spanners/internal/gen"
	"spanners/spanner"
)

// collectKeys materializes the canonical keys of all matches of doc.
func collectKeys(s *spanner.Spanner, doc []byte) []string {
	var out []string
	s.Enumerate(doc, func(m *spanner.Match) bool {
		out = append(out, m.Key())
		return true
	})
	sort.Strings(out)
	return out
}

func TestCompileErrors(t *testing.T) {
	if _, err := spanner.Compile("("); err == nil {
		t.Fatal("parse error must surface")
	}
	if _, err := spanner.Compile("!x{a"); err == nil {
		t.Fatal("unclosed capture must surface")
	}
}

func TestFigure1EndToEnd(t *testing.T) {
	s := spanner.MustCompile(gen.Figure1Pattern())
	doc := gen.Figure1Doc()

	var got []map[string]string
	s.Enumerate(doc, func(m *spanner.Match) bool {
		row := make(map[string]string)
		for _, b := range m.Bindings() {
			row[b.Var] = b.Text
		}
		got = append(got, row)
		return true
	})
	if len(got) != 2 {
		t.Fatalf("got %d matches, want 2: %v", len(got), got)
	}
	found := map[string]bool{}
	for _, row := range got {
		if e, ok := row["email"]; ok {
			found["email:"+row["name"]+"/"+e] = true
		}
		if p, ok := row["phone"]; ok {
			found["phone:"+row["name"]+"/"+p] = true
		}
	}
	if !found["email:John/j@g.be"] || !found["phone:Jane/555-12"] {
		t.Fatalf("unexpected matches: %v", got)
	}

	if c, exact := s.Count(doc); !exact || c != 2 {
		t.Fatalf("Count = %d (exact=%v), want 2", c, exact)
	}
	if s.IsEmpty(doc) {
		t.Fatal("IsEmpty must be false on a matching document")
	}
	if !s.IsEmpty([]byte("no pattern here")) {
		t.Fatal("IsEmpty must be true on a non-matching document")
	}
	if big := s.CountBig(doc); big.Int64() != 2 {
		t.Fatalf("CountBig = %v, want 2", big)
	}
}

func TestMatchAccessors(t *testing.T) {
	s := spanner.MustCompile(`.*!w{[a-z]+}.*`)
	doc := []byte("xy")
	it := s.Iterator(doc)
	seen := map[string]bool{}
	for {
		m, ok := it.Next()
		if !ok {
			break
		}
		sp, ok := m.Span("w")
		if !ok {
			t.Fatal("w must be assigned")
		}
		text, _ := m.Text("w")
		if text != string(doc[sp.Start:sp.End]) {
			t.Fatalf("Text %q disagrees with Span %v", text, sp)
		}
		if sp.Len() != sp.End-sp.Start {
			t.Fatal("Len mismatch")
		}
		if _, ok := m.Span("nope"); ok {
			t.Fatal("unknown variable must not resolve")
		}
		if _, ok := m.Text("nope"); ok {
			t.Fatal("unknown variable must not resolve")
		}
		seen[text] = true
	}
	for _, want := range []string{"x", "y", "xy"} {
		if !seen[want] {
			t.Fatalf("missing capture %q in %v", want, seen)
		}
	}
}

func TestMatchScratchReuseAndClone(t *testing.T) {
	s := spanner.MustCompile(`.*!w{[a-z]}.*`)
	it := s.Iterator([]byte("ab"))
	m1, ok := it.Next()
	if !ok {
		t.Fatal("expected a match")
	}
	c1 := m1.Clone()
	k1 := m1.Key()
	m2, ok := it.Next()
	if !ok {
		t.Fatal("expected a second match")
	}
	if m1 != m2 {
		t.Fatal("iterator should reuse its scratch match")
	}
	if c1.Key() != k1 {
		t.Fatal("clone must freeze the earlier value")
	}
	if m2.Key() == k1 {
		t.Fatal("second match must differ")
	}
}

func TestAllRangeIterator(t *testing.T) {
	s := spanner.MustCompile(`.*!w{[a-z]}.*`)
	n := 0
	for m := range s.All([]byte("abc")) {
		if m.Key() == "" {
			t.Fatal("empty key")
		}
		n++
	}
	if n != 3 {
		t.Fatalf("ranged over %d matches, want 3", n)
	}
}

func TestEnumerateEarlyStop(t *testing.T) {
	s := spanner.MustCompile(`.*!w{[a-z]}.*`)
	n := 0
	s.Enumerate([]byte("abcdef"), func(*spanner.Match) bool {
		n++
		return n < 2
	})
	if n != 2 {
		t.Fatalf("enumerated %d, want early stop at 2", n)
	}
}

func TestNonSequentialPatternSequentializes(t *testing.T) {
	// A capture under a star compiles to a non-sequential VA; the facade
	// must route it through the Proposition 4.1 product transparently.
	s := spanner.MustCompile(`(!x{a})*b`)
	if !s.Stats().Sequentialized {
		t.Fatal("capture under star must require sequentialization")
	}
	keys := collectKeys(s, []byte("ab"))
	if len(keys) != 1 || keys[0] != "x=[0,1)" {
		t.Fatalf("keys = %v, want [x=[0,1)]", keys)
	}
}

func TestStatsShape(t *testing.T) {
	s := spanner.MustCompile(gen.Figure1Pattern())
	st := s.Stats()
	if st.Mode != spanner.ModeStrict {
		t.Fatal("default mode must be strict")
	}
	if st.DetStates <= 0 || st.DenseTableBytes <= 0 || st.DenseTableBytes >= st.DetStates*1024 {
		t.Fatalf("stats inconsistent (table must be byte-class compressed): %+v", st)
	}
	if st.ByteClasses < 2 || st.ByteClasses > 256 {
		t.Fatalf("ByteClasses = %d out of range", st.ByteClasses)
	}
	if st.AcceleratedStates <= 0 || !st.PrefilterEnabled || st.PrefilterLeaveBytes == "" {
		t.Fatalf("Figure 1 pattern must accelerate: %+v", st)
	}
	if st.VAStates <= 0 || st.EVAStates <= 0 {
		t.Fatalf("intermediate sizes missing: %+v", st)
	}
	if got := s.Vars(); len(got) != 3 {
		t.Fatalf("Vars = %v, want 3 names", got)
	}
	if s.Pattern() != gen.Figure1Pattern() || s.String() != s.Pattern() {
		t.Fatal("pattern accessors disagree")
	}
	if spanner.ModeStrict.String() != "strict" || spanner.ModeLazy.String() != "lazy" {
		t.Fatal("Mode.String mismatch")
	}

	l := spanner.MustCompile(gen.Figure1Pattern(), spanner.WithLazy())
	before := l.Stats().DetStates
	l.Enumerate(gen.Figure1Doc(), func(*spanner.Match) bool { return true })
	if after := l.Stats().DetStates; after <= before {
		t.Fatalf("lazy DetStates must grow with evaluation: %d -> %d", before, after)
	}
	if l.Stats().DenseTableBytes != 0 {
		t.Fatal("lazy mode has no dense table")
	}
}

func TestGoroutineSafety(t *testing.T) {
	for _, mode := range []spanner.Option{spanner.WithStrict(), spanner.WithLazy()} {
		s := spanner.MustCompile(gen.Figure1Pattern(), mode)
		docs := [][]byte{
			gen.Figure1Doc(),
			gen.Contacts(50, 1),
			gen.Contacts(50, 2),
			[]byte("nothing to see"),
		}
		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				doc := docs[g%len(docs)]
				want, _ := s.Count(doc)
				for rep := 0; rep < 5; rep++ {
					n := uint64(0)
					s.Enumerate(doc, func(*spanner.Match) bool { n++; return true })
					if n != want {
						t.Errorf("goroutine %d: enumerated %d, count says %d", g, n, want)
						return
					}
				}
			}(g)
		}
		wg.Wait()
	}
}

// TestIsEmptyOverflowThenDeath pins IsEmpty on the ambiguous (0, false)
// counting outcome: 12 nested variables over 60 a's push the intermediate
// uint64 counts past overflow, then a trailing 'b' kills every run. The
// wrapped count is 0 with exact == false — under the low-64-bits contract
// that no longer implies "certainly non-zero", so IsEmpty must resolve the
// ambiguity with exact arithmetic and report true.
func TestIsEmptyOverflowThenDeath(t *testing.T) {
	// a*!x1{a*…!x12{a*}…a*}: nested captures over an a-only alphabet, so a
	// trailing 'b' is fatal after the counts have already overflowed.
	var p strings.Builder
	for i := 1; i <= 12; i++ {
		fmt.Fprintf(&p, "a*!x%d{", i)
	}
	p.WriteString("a*")
	for i := 1; i <= 12; i++ {
		p.WriteString("}a*")
	}
	s := spanner.MustCompile(p.String())
	doc := append(bytes.Repeat([]byte("a"), 60), 'b')
	n, exact := s.Count(doc)
	if exact || n != 0 {
		t.Fatalf("Count = (%d, %v); the construction no longer hits the ambiguous case", n, exact)
	}
	if !s.IsEmpty(doc) {
		t.Fatal("IsEmpty = false on a document with zero matches")
	}
	// The unambiguous directions stay cheap and correct.
	if s.IsEmpty(bytes.Repeat([]byte("a"), 60)) {
		t.Fatal("IsEmpty = true on a matching document with overflowing counts")
	}
}

func TestWithModeOption(t *testing.T) {
	s := spanner.MustCompile("a", spanner.WithMode(spanner.ModeLazy))
	if s.Mode() != spanner.ModeLazy {
		t.Fatal("WithMode(ModeLazy) ignored")
	}
}
