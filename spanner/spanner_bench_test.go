package spanner_test

// Benchmarks for the compile-once/evaluate-many pipeline, comparing
//
//   - dense dispatch (Compiled's 256-entry next-state table) against the
//     interface Step path (EVA's linear class-edge scan) on document-scan
//     throughput (MB/s), and
//   - strict against lazy determinization on scan throughput, per-result
//     enumeration delay, and compile time.
//
// scripts/bench.sh runs these and records the numbers in
// BENCH_spanner.json.

import (
	"io"
	"testing"

	"spanners/internal/core"
	"spanners/internal/eva"
	"spanners/internal/gen"
	"spanners/internal/rgx"
	"spanners/spanner"
)

// benchAutomata builds the three evaluation backends for one pattern: the
// strict deterministic eVA (interface Step path), its dense-compiled form,
// and a lazy on-the-fly determinizer over the same sequential eVA.
func benchAutomata(tb testing.TB, pattern string) (det *eva.EVA, dense *eva.Compiled, lazy *eva.Lazy) {
	tb.Helper()
	n, err := rgx.Parse(pattern)
	if err != nil {
		tb.Fatal(err)
	}
	v, err := rgx.Compile(n)
	if err != nil {
		tb.Fatal(err)
	}
	seq := v.ToExtended().Trim()
	if !seq.IsSequential() {
		seq = seq.Sequentialize().Trim()
	}
	det = seq.Determinize()
	dense, err = det.CompileDense()
	if err != nil {
		tb.Fatal(err)
	}
	return det, dense, eva.NewLazy(seq)
}

func benchScanDoc() []byte { return gen.Contacts(2000, 7) }

// BenchmarkEvaluateThroughput measures the Algorithm 1 preprocessing pass
// (the per-byte hot loop) over a ~45 KB contacts document. The scratch is
// reused across iterations, as the facade does per evaluation, so the
// benchmark measures the scan loop rather than arena warm-up (without the
// scratch each op paid ~3.4 MB of fresh DAG allocation).
func BenchmarkEvaluateThroughput(b *testing.B) {
	det, dense, lazy := benchAutomata(b, gen.Figure1Pattern())
	doc := benchScanDoc()
	run := func(b *testing.B, a core.Automaton) {
		var sc core.Scratch
		b.SetBytes(int64(len(doc)))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			core.EvaluateScratch(a, doc, &sc)
		}
	}
	b.Run("dense", func(b *testing.B) { run(b, dense) })
	b.Run("classscan", func(b *testing.B) { run(b, det) })
	b.Run("lazy", func(b *testing.B) { run(b, lazy) })
}

var stepSink int

// BenchmarkStepDispatch isolates the per-byte letter-transition cost that
// the dense table replaces: it replays the document through Step alone,
// restarting at the initial state when a run dies. EVA.Step scans the class
// edges of the state linearly; Compiled.Step is a single array load.
func BenchmarkStepDispatch(b *testing.B) {
	det, dense, _ := benchAutomata(b, gen.Figure1Pattern())
	doc := benchScanDoc()
	run := func(b *testing.B, a core.Automaton) {
		b.SetBytes(int64(len(doc)))
		q0 := a.Initial()
		for i := 0; i < b.N; i++ {
			q := q0
			for _, c := range doc {
				t, ok := a.Step(q, c)
				if !ok {
					t = q0
				}
				q = t
			}
			stepSink = q
		}
	}
	b.Run("dense", func(b *testing.B) { run(b, dense) })
	b.Run("classscan", func(b *testing.B) { run(b, det) })
}

// BenchmarkCountThroughput measures the Algorithm 3 counting pass, which
// shares the two-procedure loop but keeps only per-state counts.
func BenchmarkCountThroughput(b *testing.B) {
	det, dense, lazy := benchAutomata(b, gen.Figure1Pattern())
	doc := benchScanDoc()
	run := func(b *testing.B, a core.Automaton) {
		b.SetBytes(int64(len(doc)))
		for i := 0; i < b.N; i++ {
			core.Count(a, doc)
		}
	}
	b.Run("dense", func(b *testing.B) { run(b, dense) })
	b.Run("classscan", func(b *testing.B) { run(b, det) })
	b.Run("lazy", func(b *testing.B) { run(b, lazy) })
}

// BenchmarkEnumerationDelay measures the per-result delay of Algorithm 2 on
// the nested-variable workload (quadratically many outputs), after the
// preprocessing pass has run: each op is one Next() call.
func BenchmarkEnumerationDelay(b *testing.B) {
	det, dense, lazy := benchAutomata(b, gen.NestedPattern(2))
	doc := gen.RandomDoc(64, "ab", 1)
	run := func(b *testing.B, a core.Automaton) {
		res := core.Evaluate(a, doc)
		it := res.Iterator()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, ok := it.Next(); !ok {
				it = res.Iterator()
			}
		}
	}
	b.Run("dense", func(b *testing.B) { run(b, dense) })
	b.Run("classscan", func(b *testing.B) { run(b, det) })
	b.Run("lazy", func(b *testing.B) { run(b, lazy) })
}

// BenchmarkCompile measures the one-time cost the facade amortizes across
// documents: strict pays determinization plus the dense table up front,
// lazy defers subset construction to evaluation.
func BenchmarkCompile(b *testing.B) {
	pattern := gen.Figure1Pattern()
	b.Run("strict", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := spanner.Compile(pattern, spanner.WithStrict()); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("lazy", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := spanner.Compile(pattern, spanner.WithLazy()); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFacadeEnumerate exercises the whole public path — preprocessing
// plus full enumeration through the Match scratch buffer — per document.
func BenchmarkFacadeEnumerate(b *testing.B) {
	doc := benchScanDoc()
	for _, mode := range []spanner.Mode{spanner.ModeStrict, spanner.ModeLazy} {
		s := spanner.MustCompile(gen.Figure1Pattern(), spanner.WithMode(mode))
		b.Run(mode.String(), func(b *testing.B) {
			b.SetBytes(int64(len(doc)))
			for i := 0; i < b.N; i++ {
				n := 0
				s.Enumerate(doc, func(*spanner.Match) bool { n++; return true })
				if n == 0 {
					b.Fatal("no matches")
				}
			}
		})
	}
}

// BenchmarkIsEmptyDeadPrefix measures the counting pass on a document the
// automaton rejects immediately: an anchored pattern dies on the first
// byte, so the early-exit in the counting loops makes IsEmpty proportional
// to where the automaton dies, not to the document length (1 MB here).
// ns_per_op is the tracked metric — a throughput figure would count the
// ~1 MB the early exit deliberately never scans.
func BenchmarkIsEmptyDeadPrefix(b *testing.B) {
	s := spanner.MustCompile(`abc(a|b|c)*`)
	doc := make([]byte, 1<<20)
	for i := range doc {
		doc[i] = 'z'
	}
	for i := 0; i < b.N; i++ {
		if !s.IsEmpty(doc) {
			b.Fatal("document unexpectedly matched")
		}
	}
}

// BenchmarkAlgebraEnumerate measures the full facade path on composed
// spanners: a union of two extraction patterns and a join of an extraction
// pattern with a boolean filter (the document-intersection use of natural
// join). Composed spanners run the same dense-dispatch scan and
// constant-delay enumeration as directly compiled ones.
func BenchmarkAlgebraEnumerate(b *testing.B) {
	doc := benchScanDoc()
	contacts := spanner.MustCompile(gen.Figure1Pattern())
	numbers := spanner.MustCompile(`.*!num{(0|1|2|3|4|5|6|7|8|9)+}.*`)
	filter := spanner.MustCompile(`.*@.*`)

	union, err := spanner.Union(contacts, numbers)
	if err != nil {
		b.Fatal(err)
	}
	join, err := spanner.Join(contacts, filter)
	if err != nil {
		b.Fatal(err)
	}
	for _, bench := range []struct {
		name string
		s    *spanner.Spanner
	}{{"union", union}, {"join", join}} {
		b.Run(bench.name, func(b *testing.B) {
			b.SetBytes(int64(len(doc)))
			for i := 0; i < b.N; i++ {
				n := 0
				bench.s.Enumerate(doc, func(*spanner.Match) bool { n++; return true })
				if n == 0 {
					b.Fatal("no matches")
				}
			}
		})
	}
}

// BenchmarkSparseScanThroughput measures the literal-prefiltered scan over
// 1 MB corpora of varying match density — the workload the accelerated
// scan path exists for. Density 0 is the pure-prefilter regime (every byte
// is provably inert); rising densities hand progressively more of the
// document to the full evaluator. The off/ variants pin the unaccelerated
// baseline the speedup is measured against.
func BenchmarkSparseScanThroughput(b *testing.B) {
	on := spanner.MustCompile(gen.SparsePattern)
	off := spanner.MustCompile(gen.SparsePattern, spanner.WithoutPrefilter())
	for _, d := range []struct {
		name    string
		density float64
	}{
		{"d0", 0},
		{"d0.01pct", 0.0001},
		{"d1pct", 0.01},
		{"d10pct", 0.1},
	} {
		doc := gen.SparseMatches(1<<20, d.density, 7)
		run := func(b *testing.B, s *spanner.Spanner) {
			b.SetBytes(int64(len(doc)))
			for i := 0; i < b.N; i++ {
				s.Count(doc)
			}
		}
		b.Run(d.name+"/prefilter", func(b *testing.B) { run(b, on) })
		b.Run(d.name+"/off", func(b *testing.B) { run(b, off) })
	}
}

// BenchmarkTableMemory reports the dense transition-table footprint as
// bytes_per_state — the metric the byte-class compression moves (a full
// 256-column row costs 1 KiB/state; class-compressed rows a few dozen
// bytes). No per-op work: the table is built once outside the loop.
func BenchmarkTableMemory(b *testing.B) {
	for _, bench := range []struct {
		name    string
		pattern string
	}{
		{"figure1", gen.Figure1Pattern()},
		{"sparse", gen.SparsePattern},
		{"nested", gen.NestedPattern(2)},
	} {
		_, dense, _ := benchAutomata(b, bench.pattern)
		b.Run(bench.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				stepSink = dense.TableBytes()
			}
			b.ReportMetric(float64(dense.TableBytes())/float64(dense.NumStates()), "bytes_per_state")
			b.ReportMetric(float64(dense.NumClasses()), "byte_classes")
		})
	}
}

// chunkedBenchReader replays a document in fixed-size chunks for the
// streaming benchmarks.
type chunkedBenchReader struct {
	data []byte
	pos  int
	size int
}

func (r *chunkedBenchReader) Read(p []byte) (int, error) {
	if r.pos >= len(r.data) {
		return 0, io.EOF
	}
	n := min(r.size, min(len(p), len(r.data)-r.pos))
	copy(p, r.data[r.pos:r.pos+n])
	r.pos += n
	return n, nil
}

// BenchmarkStreamingThroughput measures the incremental evaluation path —
// EnumerateReader with chunked input and CountReader's never-materialized
// counting pass — against the whole-document facade entries above.
func BenchmarkStreamingThroughput(b *testing.B) {
	s := spanner.MustCompile(gen.Figure1Pattern())
	doc := benchScanDoc()
	for _, size := range []int{4 << 10, 64 << 10} {
		name := "enumerate/chunk4K"
		if size == 64<<10 {
			name = "enumerate/chunk64K"
		}
		b.Run(name, func(b *testing.B) {
			b.SetBytes(int64(len(doc)))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				n := 0
				err := s.EnumerateReader(&chunkedBenchReader{data: doc, size: size}, func(*spanner.Match) bool {
					n++
					return true
				})
				if err != nil || n == 0 {
					b.Fatalf("n=%d err=%v", n, err)
				}
			}
		})
	}
	b.Run("count/chunk64K", func(b *testing.B) {
		b.SetBytes(int64(len(doc)))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := s.CountReader(&chunkedBenchReader{data: doc, size: 64 << 10}); err != nil {
				b.Fatal(err)
			}
		}
	})
}
