package spanner

import (
	"fmt"
	"sort"
	"strings"

	"spanners/internal/core"
	"spanners/internal/model"
)

// Span is a half-open byte range [Start, End) in a document, using 0-based
// offsets (the paper's 1-based span [i, j⟩ maps to [i-1, j-1)).
type Span struct {
	Start, End int
}

// Len returns End - Start.
func (s Span) Len() int { return s.End - s.Start }

// String renders the span as "[start,end)".
func (s Span) String() string { return fmt.Sprintf("[%d,%d)", s.Start, s.End) }

// Binding is one variable assignment of a match.
type Binding struct {
	Var  string
	Span Span
	Text string
}

// Match is one output mapping: a partial assignment of the pattern's
// capture variables to spans of the document. Matches handed out by
// Iterator.Next and Enumerate are reused scratch buffers; Clone to retain.
type Match struct {
	doc   []byte
	names []string
	reg   *model.Registry
	spans []model.Span // 1-based; zero Span = variable unassigned
}

func newMatch(doc []byte, names []string, reg *model.Registry) *Match {
	return &Match{doc: doc, names: names, reg: reg, spans: make([]model.Span, len(names))}
}

// Vars returns the names of all pattern variables (assigned or not) in
// registry order. The slice is shared; do not mutate.
func (m *Match) Vars() []string { return m.names }

// Span returns the span assigned to the named variable and whether the
// variable is assigned in this match.
func (m *Match) Span(name string) (Span, bool) {
	v, ok := m.reg.Lookup(name)
	if !ok {
		return Span{}, false
	}
	s := m.spans[v]
	if s.IsZero() {
		return Span{}, false
	}
	return Span{Start: s.Start - 1, End: s.End - 1}, true
}

// Text returns the document content of the named variable's span.
func (m *Match) Text(name string) (string, bool) {
	v, ok := m.reg.Lookup(name)
	if !ok {
		return "", false
	}
	s := m.spans[v]
	if s.IsZero() {
		return "", false
	}
	return s.Text(m.doc), true
}

// Bindings returns the assigned variables with their spans and contents, in
// registry order.
func (m *Match) Bindings() []Binding {
	out := make([]Binding, 0, len(m.spans))
	for v, s := range m.spans {
		if s.IsZero() {
			continue
		}
		out = append(out, Binding{
			Var:  m.names[v],
			Span: Span{Start: s.Start - 1, End: s.End - 1},
			Text: s.Text(m.doc),
		})
	}
	return out
}

// Clone returns an independent copy of the match.
func (m *Match) Clone() *Match {
	c := &Match{doc: m.doc, names: m.names, reg: m.reg, spans: make([]model.Span, len(m.spans))}
	copy(c.spans, m.spans)
	return c
}

// matchAlloc hands out Match values and span storage in chunks of
// geometrically growing size, so collecting k matches costs O(log k)
// allocations instead of 2k without over-allocating for small documents.
// The handed-out matches remain immutable and independent; they merely
// share backing arrays, so retaining one match keeps its chunk alive.
type matchAlloc struct {
	matches []Match
	spans   []model.Span
	next    int
}

func (a *matchAlloc) clone(m *Match) *Match {
	nv := len(m.spans)
	if len(a.matches) == 0 {
		switch {
		case a.next == 0:
			a.next = 8
		case a.next < 256:
			a.next *= 2
		}
		a.matches = make([]Match, a.next)
		a.spans = make([]model.Span, a.next*nv)
	}
	c := &a.matches[0]
	a.matches = a.matches[1:]
	*c = Match{doc: m.doc, names: m.names, reg: m.reg, spans: a.spans[:nv:nv]}
	a.spans = a.spans[nv:]
	copy(c.spans, m.spans)
	return c
}

// Collect enumerates doc, appends an independent copy of every match to
// dst and returns the extended slice. limit > 0 caps the number of
// collected matches. Unlike Enumerate's scratch buffers, the returned
// matches are retainable as-is, and the clone allocations are amortized
// across the batch — the convenient form for callers that want an owned
// result set rather than Enumerate's zero-copy callback discipline.
func (s *Spanner) Collect(dst []*Match, doc []byte, limit int) []*Match {
	var a matchAlloc
	start := len(dst)
	s.Enumerate(doc, func(m *Match) bool {
		dst = append(dst, a.clone(m))
		return limit == 0 || len(dst)-start < limit
	})
	return dst
}

// Key returns a canonical encoding of the match — assigned variables in
// lexicographic order with 0-based spans. Two matches over the same
// document are equal exactly when their keys are equal.
func (m *Match) Key() string {
	bs := m.Bindings()
	sort.Slice(bs, func(i, j int) bool { return bs[i].Var < bs[j].Var })
	var b strings.Builder
	for i, bd := range bs {
		if i > 0 {
			b.WriteByte('|')
		}
		fmt.Fprintf(&b, "%s=%s", bd.Var, bd.Span)
	}
	return b.String()
}

// String renders the match like "{user=[0,4) "John"}".
func (m *Match) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, bd := range m.Bindings() {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s=%s %q", bd.Var, bd.Span, bd.Text)
	}
	b.WriteByte('}')
	return b.String()
}

// Iterator is a constant-delay pull iterator over the matches of one
// document (Algorithm 2): the preprocessing pass has already run, and each
// Next performs O(ℓ) work in the number of variables, independent of the
// document length. An Iterator is not goroutine-safe; the Spanner can hand
// out many independent Iterators concurrently.
type Iterator struct {
	it *core.Iterator
	m  *Match
}

// Next returns the next match, or ok = false when the enumeration is
// complete. The *Match is a scratch buffer reused across calls; Clone it to
// retain it.
func (it *Iterator) Next() (m *Match, ok bool) {
	mm, ok := it.it.Next()
	if !ok {
		return nil, false
	}
	for v := range it.m.spans {
		sp, assigned := mm.Get(model.Var(v))
		if !assigned {
			sp = model.Span{}
		}
		it.m.spans[v] = sp
	}
	return it.m, true
}
