package spanner_test

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"strings"
	"sync"
	"testing"

	"spanners/internal/gen"
	"spanners/spanner"
)

// chunkReader delivers data in fixed-size chunks, forcing the streaming
// entry points through many Feed boundaries.
type chunkReader struct {
	data []byte
	size int
}

func (r *chunkReader) Read(p []byte) (int, error) {
	if len(r.data) == 0 {
		return 0, io.EOF
	}
	n := min(r.size, min(len(p), len(r.data)))
	copy(p, r.data[:n])
	r.data = r.data[n:]
	return n, nil
}

// errReader yields some data and then a non-EOF error.
type errReader struct {
	data []byte
	err  error
}

func (r *errReader) Read(p []byte) (int, error) {
	if len(r.data) == 0 {
		return 0, r.err
	}
	n := copy(p, r.data)
	r.data = r.data[n:]
	return n, nil
}

func keysOf(s *spanner.Spanner, doc []byte) []string {
	var out []string
	s.Enumerate(doc, func(m *spanner.Match) bool {
		out = append(out, m.Key())
		return true
	})
	return out
}

func TestEnumerateReaderMatchesEnumerate(t *testing.T) {
	doc := gen.Contacts(120, 11)
	for _, mode := range []spanner.Mode{spanner.ModeStrict, spanner.ModeLazy} {
		s := spanner.MustCompile(gen.Figure1Pattern(), spanner.WithMode(mode))
		want := keysOf(s, doc)
		if len(want) == 0 {
			t.Fatal("no matches; test would be vacuous")
		}
		for _, size := range []int{1, 3, 7, 1 << 10, 1 << 20} {
			var got []string
			err := s.EnumerateReader(&chunkReader{data: doc, size: size}, func(m *spanner.Match) bool {
				got = append(got, m.Key())
				return true
			})
			if err != nil {
				t.Fatalf("mode %v size %d: %v", mode, size, err)
			}
			if fmt.Sprint(got) != fmt.Sprint(want) {
				t.Fatalf("mode %v chunk size %d: streaming output differs from Enumerate:\ngot  %d matches\nwant %d matches",
					mode, size, len(got), len(want))
			}
		}
	}
}

func TestEnumerateReaderEmptyInput(t *testing.T) {
	s := spanner.MustCompile(`(!x{a})?`) // matches the empty document
	n := 0
	if err := s.EnumerateReader(strings.NewReader(""), func(*spanner.Match) bool {
		n++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("empty input produced %d matches, want 1 (the empty mapping)", n)
	}
}

func TestEnumerateReaderPropagatesReadError(t *testing.T) {
	s := spanner.MustCompile(gen.Figure1Pattern())
	boom := errors.New("boom")
	err := s.EnumerateReader(&errReader{data: gen.Figure1Doc(), err: boom}, func(*spanner.Match) bool {
		t.Fatal("no matches must be delivered on a failed read")
		return false
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
}

func TestAllReader(t *testing.T) {
	s := spanner.MustCompile(gen.Figure1Pattern())
	doc := gen.Contacts(30, 5)
	want := keysOf(s, doc)

	var got []string
	for m, err := range s.AllReader(bytes.NewReader(doc)) {
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, m.Key())
	}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("AllReader output differs from Enumerate")
	}

	// Early break must not panic or deliver further values.
	n := 0
	for _, err := range s.AllReader(bytes.NewReader(doc)) {
		if err != nil {
			t.Fatal(err)
		}
		n++
		if n == 2 {
			break
		}
	}
	if n != 2 {
		t.Fatalf("early break delivered %d", n)
	}

	// A read error arrives as the final (nil, err) element.
	boom := errors.New("boom")
	sawErr := false
	for m, err := range s.AllReader(&errReader{data: []byte("John"), err: boom}) {
		if err != nil {
			sawErr = true
			if m != nil {
				t.Fatal("error element must carry a nil match")
			}
		}
	}
	if !sawErr {
		t.Fatal("read error was swallowed")
	}
}

func TestCountReaderMatchesCount(t *testing.T) {
	doc := gen.Contacts(200, 13)
	for _, mode := range []spanner.Mode{spanner.ModeStrict, spanner.ModeLazy} {
		s := spanner.MustCompile(gen.Figure1Pattern(), spanner.WithMode(mode))
		want, wantExact := s.Count(doc)
		for _, size := range []int{1, 17, 1 << 16} {
			got, exact, err := s.CountReader(&chunkReader{data: doc, size: size})
			if err != nil || got != want || exact != wantExact {
				t.Fatalf("mode %v size %d: CountReader = (%d, %v, %v), want (%d, %v)",
					mode, size, got, exact, err, want, wantExact)
			}
			big, err := s.CountBigReader(&chunkReader{data: doc, size: size})
			if err != nil || big.Uint64() != want {
				t.Fatalf("mode %v size %d: CountBigReader = (%v, %v), want %d", mode, size, big, err, want)
			}
		}
	}
}

func TestCountBigReaderOverflow(t *testing.T) {
	// 12 nested variables over 60 bytes overflow uint64: the streaming
	// counter must migrate to exact big-integer arithmetic mid-stream.
	s := spanner.MustCompile(gen.NestedPattern(12))
	doc := gen.RandomDoc(60, "a", 1)
	want := s.CountBig(doc)

	_, exact, err := s.CountReader(&chunkReader{data: doc, size: 7})
	if err != nil {
		t.Fatal(err)
	}
	if exact {
		t.Fatal("expected inexact uint64 count")
	}
	got, err := s.CountBigReader(&chunkReader{data: doc, size: 7})
	if err != nil {
		t.Fatal(err)
	}
	if got.Cmp(want) != 0 {
		t.Fatalf("CountBigReader = %v, want %v", got, want)
	}
}

func TestClonedMatchesSurviveScratchReuse(t *testing.T) {
	// The buffer-ownership rule: a Cloned match stays valid forever, even
	// after the spanner's pooled scratch has evaluated other documents.
	s := spanner.MustCompile(gen.Figure1Pattern())
	type saved struct {
		m   *spanner.Match
		key string
		txt string
	}
	var all []saved
	err := s.EnumerateReader(&chunkReader{data: gen.Contacts(50, 17), size: 13}, func(m *spanner.Match) bool {
		c := m.Clone()
		txt, _ := c.Text("name")
		all = append(all, saved{c, c.Key(), txt})
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(all) == 0 {
		t.Fatal("no matches")
	}
	// Churn the pool with other documents.
	for i := 0; i < 10; i++ {
		s.Enumerate(gen.Contacts(80, int64(i)), func(*spanner.Match) bool { return true })
	}
	for i, sv := range all {
		if sv.m.Key() != sv.key {
			t.Fatalf("clone %d key corrupted: %s != %s", i, sv.m.Key(), sv.key)
		}
		if txt, _ := sv.m.Text("name"); txt != sv.txt {
			t.Fatalf("clone %d text corrupted: %q != %q", i, txt, sv.txt)
		}
	}
}

func TestConcurrentStreamingEvaluations(t *testing.T) {
	// Pool safety and lazy-mode locking under the race detector: many
	// goroutines streaming different documents through one Spanner.
	for _, mode := range []spanner.Mode{spanner.ModeStrict, spanner.ModeLazy} {
		s := spanner.MustCompile(gen.Figure1Pattern(), spanner.WithMode(mode))
		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				doc := gen.Contacts(20+g, int64(g))
				want := fmt.Sprint(keysOf(s, doc))
				for i := 0; i < 5; i++ {
					var got []string
					err := s.EnumerateReader(&chunkReader{data: doc, size: 5}, func(m *spanner.Match) bool {
						got = append(got, m.Key())
						return true
					})
					if err != nil {
						t.Errorf("goroutine %d: %v", g, err)
						return
					}
					if fmt.Sprint(got) != want {
						t.Errorf("goroutine %d iteration %d: streaming output diverged", g, i)
						return
					}
					if _, _, err := s.CountReader(&chunkReader{data: doc, size: 9}); err != nil {
						t.Errorf("goroutine %d: count: %v", g, err)
						return
					}
				}
			}(g)
		}
		wg.Wait()
	}
}

func TestPreprocessDeferredEnumeration(t *testing.T) {
	// The deferred two-phase API the engine builds on: preprocessing and
	// enumeration at different times, repeatable, with Release recycling
	// the scratch.
	s := spanner.MustCompile(gen.Figure1Pattern())
	doc := gen.Contacts(25, 31)
	want := keysOf(s, doc)

	ev := s.Preprocess(doc)
	if ev.IsEmpty() {
		t.Fatal("expected matches")
	}
	for round := 0; round < 2; round++ {
		var got []string
		ev.Enumerate(func(m *spanner.Match) bool {
			got = append(got, m.Key())
			return true
		})
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("round %d: deferred enumeration differs from Enumerate", round)
		}
	}
	ev.Release()
	ev.Release() // idempotent

	// The pool must still hand out correct state afterwards.
	if got := keysOf(s, doc); fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatal("enumeration after Release disagrees")
	}
}
