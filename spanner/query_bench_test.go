package spanner_test

// Benchmarks for the query-plan layer, recorded in BENCH_spanner.json by
// scripts/bench.sh:
//
//   - n-ary union lowering (one fresh initial, each operand embedded once)
//     against the chained binary construction (the unoptimized plan), on
//     compile time, and
//   - a deep plan with repeated subexpressions and a projection, optimized
//     against unoptimized, on evaluation throughput (the counting pass —
//     a pure scan whose cost tracks the live automaton size).

import (
	"fmt"
	"math/rand"
	"testing"

	"spanners/spanner"
)

// wideUnionQuery builds a k-operand union as callers naturally write it:
// one .Union call at a time, i.e. a left-nested chain of binary nodes.
func wideUnionQuery(k int) *spanner.Query {
	q := spanner.Pattern(`(a|b)*!v0{a+}(a|b)*`)
	for i := 1; i < k; i++ {
		q = q.Union(spanner.Pattern(fmt.Sprintf(`(a|b)*!v%d{a+b}(a|b)*`, i)))
	}
	return q
}

// BenchmarkQueryCompileNaryUnion measures compiling a 12-way union through
// the optimizer: the flattened plan lowers through eva.UnionAll, embedding
// each operand exactly once.
func BenchmarkQueryCompileNaryUnion(b *testing.B) {
	q := wideUnionQuery(12)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := q.Compile(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQueryCompileChainedUnion is the same query without the
// optimizer: the nested binary unions lower as a fold, re-embedding the
// accumulated sum at every step (Θ(k²) copy work).
func BenchmarkQueryCompileChainedUnion(b *testing.B) {
	q := wideUnionQuery(12)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := q.Compile(spanner.WithoutOptimization()); err != nil {
			b.Fatal(err)
		}
	}
}

// deepPlanQuery is a deep composed plan with repeated subexpressions: a
// nested 8-operand union over 3 distinct patterns, projected onto one
// variable. The optimizer flattens it to a 3-ary sum and pushes the
// projection into the operands; the unoptimized plan carries every copy.
func deepPlanQuery() *spanner.Query {
	p1 := spanner.Pattern(`(a|b)*!x{a+}(a|b)*`)
	p2 := spanner.Pattern(`(a|b)*!y{b+a}(a|b)*`)
	p3 := spanner.Pattern(`(a|b)*!x{ab}(a|b)*`)
	return p1.Union(p2).Union(p3).Union(p1).Union(p2).Union(p3).Union(p1).Union(p2).
		Project("x")
}

func benchDeepPlanDoc() []byte {
	rng := rand.New(rand.NewSource(7))
	doc := make([]byte, 1<<16)
	for i := range doc {
		doc[i] = byte('a' + rng.Intn(2))
	}
	return doc
}

func benchDeepPlanCount(b *testing.B, opts ...spanner.Option) {
	s, err := deepPlanQuery().Compile(opts...)
	if err != nil {
		b.Fatal(err)
	}
	doc := benchDeepPlanDoc()
	b.SetBytes(int64(len(doc)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Count(doc)
	}
}

// BenchmarkDeepPlanCountOptimized measures the counting scan of the
// optimized deep plan (deduplicated operands, pushed projection). The
// strict pipeline determinizes both plans into isomorphic automata, so
// this pair mostly documents that optimization never hurts the scan.
func BenchmarkDeepPlanCountOptimized(b *testing.B) {
	benchDeepPlanCount(b)
}

// BenchmarkDeepPlanCountUnoptimized is the same scan over the plan
// compiled exactly as written.
func BenchmarkDeepPlanCountUnoptimized(b *testing.B) {
	benchDeepPlanCount(b, spanner.WithoutOptimization())
}

func benchDeepPlanCompile(b *testing.B, opts ...spanner.Option) {
	q := deepPlanQuery()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := q.Compile(opts...); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDeepPlanCompileOptimized measures where the optimizer pays at
// compile time: dedup shrinks the automaton fed into determinization from
// eight embedded operands to three.
func BenchmarkDeepPlanCompileOptimized(b *testing.B) {
	benchDeepPlanCompile(b)
}

// BenchmarkDeepPlanCompileUnoptimized compiles the same plan as written.
func BenchmarkDeepPlanCompileUnoptimized(b *testing.B) {
	benchDeepPlanCompile(b, spanner.WithoutOptimization())
}
