// Logical query plans: the annotated, rewritable form of a Query that
// Compile optimizes and lowers. The optimizer runs entirely before any
// automaton construction:
//
//   - flatten: nested unions collapse into one n-ary union (lowered through
//     eva.UnionAll — a single fresh initial state instead of a chain of
//     binary merges) and nested joins into one n-ary join (the natural join
//     is associative).
//   - projection pushdown: π distributes through union and, keeping the
//     join variables, past join sides; a side that binds none of the
//     projected variables degrades to a boolean document filter
//     (project[]).
//   - dedup: structurally identical union operands are removed (set
//     semantics make ⟦A⟧ ∪ ⟦A⟧ = ⟦A⟧); lowering additionally memoizes every
//     distinct subexpression, so each is parsed and compiled once however
//     often it appears. Join operands are NOT deduplicated: ⟦A⟧ ⋈ ⟦A⟧
//     joins distinct compatible mappings of A and can exceed ⟦A⟧.
//   - join ordering: join operands are reordered smallest-estimated-first,
//     so the synchronized products grow from the smallest factors.
//
// Lowering then maps the optimized plan onto internal/eva constructions and
// hands the resulting automaton to the ordinary compilation pipeline.
package spanner

import (
	"fmt"
	"slices"
	"sort"
	"strings"

	"spanners/internal/eva"
	"spanners/internal/rgx"
)

// estCap saturates size estimates so join products cannot overflow.
const estCap = 1 << 30

// plan is one node of an annotated logical plan. Plans are built fresh per
// Compile/Explain from the immutable Query, so rewrites may share and
// recombine nodes freely (they never mutate existing ones).
type plan struct {
	op      queryOp
	pattern string   // opPattern
	pre     *Spanner // opPattern: pre-compiled leaf
	node    rgx.Node // opPattern without pre: parsed formula
	subs    []*plan
	keep    []string // opProject
	// vars are the variables bound in this subtree, first-binding order;
	// est is the estimated size (states + transitions) of the subtree's
	// eVA, used to order join operands before anything is built.
	vars []string
	est  int
	// ckey caches key(): plan nodes are immutable once built and a Compile
	// runs single-goroutine, so each subtree renders its canonical form at
	// most once however often dedup and lowering ask for it.
	ckey string
}

// planner builds plans from queries, parsing each distinct leaf pattern
// exactly once.
type planner struct {
	parsed map[string]rgx.Node
}

// newPlan validates q and returns its annotated plan: leaf patterns parse,
// and every projected variable is bound in the subexpression below it.
func newPlan(q *Query) (*plan, error) {
	pl := &planner{parsed: make(map[string]rgx.Node)}
	return pl.build(q)
}

func (pl *planner) build(q *Query) (*plan, error) {
	switch q.op {
	case opPattern:
		if q.pre != nil {
			return &plan{
				op: opPattern, pattern: q.pattern, pre: q.pre,
				vars: q.pre.Vars(), est: q.pre.seq.Size(),
			}, nil
		}
		n, ok := pl.parsed[q.pattern]
		if !ok {
			var err error
			if n, err = rgx.Parse(q.pattern); err != nil {
				return nil, err
			}
			pl.parsed[q.pattern] = n
		}
		return &plan{op: opPattern, pattern: q.pattern, node: n, vars: rgx.Vars(n), est: rgx.Size(n) + 1}, nil
	case opProject:
		sub, err := pl.build(q.subs[0])
		if err != nil {
			return nil, err
		}
		for _, name := range q.keep {
			if !slices.Contains(sub.vars, name) {
				return nil, fmt.Errorf("query: project[%s]: variable %q not bound in %s",
					strings.Join(q.keep, ","), name, q.subs[0])
			}
		}
		return mkProject(sub, q.keep), nil
	default:
		subs := make([]*plan, len(q.subs))
		for i, s := range q.subs {
			var err error
			if subs[i], err = pl.build(s); err != nil {
				return nil, err
			}
		}
		if q.op == opUnion {
			return mkUnion(subs), nil
		}
		return mkJoin(subs), nil
	}
}

// mkUnion/mkJoin/mkProject construct combinator nodes, recomputing the vars
// and size annotations from the children.
func mkUnion(subs []*plan) *plan {
	p := &plan{op: opUnion, subs: subs, vars: unionVars(subs), est: 1}
	for _, s := range subs {
		p.est = min(p.est+s.est, estCap)
	}
	return p
}

func mkJoin(subs []*plan) *plan {
	p := &plan{op: opJoin, subs: subs, vars: unionVars(subs), est: 1}
	for _, s := range subs {
		// Saturating multiply: the guard keeps the product from overflowing
		// int before the cap applies (ests are ≥ 1 and ≤ estCap).
		if s.est > 0 && p.est > estCap/s.est {
			p.est = estCap
		} else {
			p.est = min(p.est*s.est, estCap)
		}
	}
	return p
}

func mkProject(sub *plan, keep []string) *plan {
	return &plan{op: opProject, subs: []*plan{sub}, keep: keep, vars: keep, est: min(sub.est+1, estCap)}
}

func unionVars(subs []*plan) []string {
	var all []string
	for _, s := range subs {
		all = append(all, s.vars...)
	}
	return dedupNames(all)
}

// key is the canonical one-line form of the plan, the structural identity
// used for deduplication and lowering memoization. It is rendered by the
// Query renderer (via asQuery), so the canonical syntax has exactly one
// definition — the one ParseQuery round-trips — and cached per node, so a
// k-node plan renders O(k) subtrees per Compile rather than O(k²).
func (p *plan) key() string {
	if p.ckey == "" {
		p.ckey = p.asQuery().String()
	}
	return p.ckey
}

// asQuery rebuilds the plan's Query shape (for rendering only: pre-compiled
// leaves reduce to their pattern, which is what identifies them).
func (p *plan) asQuery() *Query {
	switch p.op {
	case opPattern:
		return &Query{op: opPattern, pattern: p.pattern}
	case opProject:
		return &Query{op: opProject, subs: []*Query{p.subs[0].asQuery()}, keep: p.keep}
	default:
		subs := make([]*Query, len(p.subs))
		for i, s := range p.subs {
			subs[i] = s.asQuery()
		}
		return &Query{op: p.op, subs: subs}
	}
}

// render pretty-prints the plan as an indented tree, one node per line;
// this is the Explain format.
func (p *plan) render() string {
	var b strings.Builder
	p.writeTree(&b, 0)
	return b.String()
}

func (p *plan) writeTree(b *strings.Builder, depth int) {
	if depth > 0 {
		b.WriteByte('\n')
	}
	for i := 0; i < depth; i++ {
		b.WriteString("  ")
	}
	switch p.op {
	case opPattern:
		b.WriteString(quotePattern(p.pattern))
		return
	case opUnion:
		b.WriteString("union")
	case opJoin:
		b.WriteString("join")
	case opProject:
		b.WriteString("project[")
		b.WriteString(strings.Join(p.keep, ","))
		b.WriteByte(']')
	}
	fmt.Fprintf(b, "  (vars %s, est %d)", strings.Join(p.vars, ","), p.est)
	for _, s := range p.subs {
		s.writeTree(b, depth+1)
	}
}

// optimize runs the rewrite passes in order. Every pass is semantics
// preserving on the match sets (the differential suite and the
// FuzzQueryPlanEquivalence target pin this against the unoptimized plan);
// only the variable order of dropped identity projections could differ, so
// those are removed only when the order matches too.
func optimize(p *plan) *plan {
	p = flatten(p)
	p = pushdown(p)
	p = flatten(p) // pushdown exposes unions directly under unions
	p = dedupUnions(p)
	p = orderJoins(p)
	return collapse(p)
}

// flatten splices union operands that are themselves unions into their
// parent (and likewise for joins), bottom-up.
func flatten(p *plan) *plan {
	switch p.op {
	case opUnion, opJoin:
		var subs []*plan
		for _, s := range p.subs {
			s = flatten(s)
			if s.op == p.op {
				subs = append(subs, s.subs...)
			} else {
				subs = append(subs, s)
			}
		}
		if p.op == opUnion {
			return mkUnion(subs)
		}
		return mkJoin(subs)
	case opProject:
		return mkProject(flatten(p.subs[0]), p.keep)
	default:
		return p
	}
}

// pushdown moves every projection as deep as it can go.
func pushdown(p *plan) *plan {
	switch p.op {
	case opProject:
		return push(pushdown(p.subs[0]), p.keep)
	case opUnion, opJoin:
		subs := make([]*plan, len(p.subs))
		for i, s := range p.subs {
			subs[i] = pushdown(s)
		}
		if p.op == opUnion {
			return mkUnion(subs)
		}
		return mkJoin(subs)
	default:
		return p
	}
}

// push rewrites π_keep(p), pushing the restriction into p's operands.
// Invariant: keep ⊆ p.vars. The rewrites are the standard relational ones,
// adapted to partial mappings:
//
//	π_V(A ∪ B)   = π_{V∩vars(A)}(A) ∪ π_{V∩vars(B)}(B)
//	π_V(A ⋈ B)   = π_V(π_{(V∪S)∩vars(A)}(A) ⋈ π_{(V∪S)∩vars(B)}(B))
//	               where S = vars(A) ∩ vars(B) (compatibility is decided on
//	               the shared variables, so they must survive to the join)
//	π_V(π_W(A))  = π_V(A)                        (V ⊆ W by validation)
//	π_vars(A)(A) = A                             (identity projection)
func push(p *plan, keep []string) *plan {
	switch p.op {
	case opProject:
		return push(p.subs[0], keep)
	case opUnion:
		subs := make([]*plan, len(p.subs))
		for i, s := range p.subs {
			subs[i] = push(s, intersectNames(keep, s.vars))
		}
		u := mkUnion(subs)
		if slices.Equal(u.vars, keep) {
			return u
		}
		// The operand projections already restrict the variable set; the
		// residual outer projection only restores the requested variable
		// order (an identity projection on the set, compiled as a plain
		// per-transition rewrite).
		return mkProject(u, keep)
	case opJoin:
		subs := make([]*plan, len(p.subs))
		for i, s := range p.subs {
			// The variables this side shares with any other operand decide
			// join compatibility and must be kept below the join.
			var others []string
			for j, o := range p.subs {
				if j != i {
					others = append(others, o.vars...)
				}
			}
			shared := intersectNames(s.vars, others)
			subs[i] = push(s, intersectNames(s.vars, append(append([]string(nil), keep...), shared...)))
		}
		j := mkJoin(subs)
		if slices.Equal(j.vars, keep) {
			return j
		}
		return mkProject(j, keep)
	default:
		if slices.Equal(keep, p.vars) {
			return p
		}
		return mkProject(p, keep)
	}
}

// intersectNames returns the elements of a that occur in b, in a's order,
// deduplicated.
func intersectNames(a, b []string) []string {
	out := make([]string, 0, len(a))
	for _, n := range dedupNames(a) {
		if slices.Contains(b, n) {
			out = append(out, n)
		}
	}
	return out
}

// dedupUnions removes structurally identical union operands (set
// semantics), bottom-up.
func dedupUnions(p *plan) *plan {
	switch p.op {
	case opUnion:
		seen := make(map[string]bool, len(p.subs))
		var subs []*plan
		for _, s := range p.subs {
			s = dedupUnions(s)
			if k := s.key(); !seen[k] {
				seen[k] = true
				subs = append(subs, s)
			}
		}
		return mkUnion(subs)
	case opJoin:
		subs := make([]*plan, len(p.subs))
		for i, s := range p.subs {
			subs[i] = dedupUnions(s)
		}
		return mkJoin(subs)
	case opProject:
		return mkProject(dedupUnions(p.subs[0]), p.keep)
	default:
		return p
	}
}

// orderJoins stably sorts every join's operands by estimated size,
// smallest first, so the synchronized product grows from the smallest
// factors.
func orderJoins(p *plan) *plan {
	switch p.op {
	case opUnion, opJoin:
		subs := make([]*plan, len(p.subs))
		for i, s := range p.subs {
			subs[i] = orderJoins(s)
		}
		if p.op == opUnion {
			return mkUnion(subs)
		}
		sort.SliceStable(subs, func(i, j int) bool { return subs[i].est < subs[j].est })
		return mkJoin(subs)
	case opProject:
		return mkProject(orderJoins(p.subs[0]), p.keep)
	default:
		return p
	}
}

// collapse replaces single-operand unions and joins (e.g. after dedup) by
// their operand, bottom-up.
func collapse(p *plan) *plan {
	switch p.op {
	case opUnion, opJoin:
		subs := make([]*plan, len(p.subs))
		for i, s := range p.subs {
			subs[i] = collapse(s)
		}
		if len(subs) == 1 {
			return subs[0]
		}
		if p.op == opUnion {
			return mkUnion(subs)
		}
		return mkJoin(subs)
	case opProject:
		return mkProject(collapse(p.subs[0]), p.keep)
	default:
		return p
	}
}

// lowerer maps plans onto internal/eva constructions, memoizing each
// distinct subexpression by its structural key so it is compiled exactly
// once however often it appears in the plan (and the constructions never
// mutate their inputs, so the memoized automata are safe to share).
type lowerer struct {
	memo map[string]*eva.EVA
}

func newLowerer() *lowerer { return &lowerer{memo: make(map[string]*eva.EVA)} }

// lower builds the subtree's eVA. The result is not necessarily
// sequential — joins defer shared-variable conflicts to the downstream
// sequentialization product — so consumers that need sequentiality
// (Project, and the final compilation pipeline) sequentialize themselves.
func (l *lowerer) lower(p *plan) (*eva.EVA, error) {
	key := p.key()
	if e, ok := l.memo[key]; ok {
		return e, nil
	}
	e, err := l.lowerNew(p)
	if err != nil {
		return nil, err
	}
	l.memo[key] = e
	return e, nil
}

func (l *lowerer) lowerNew(p *plan) (*eva.EVA, error) {
	switch p.op {
	case opPattern:
		if p.pre != nil {
			return p.pre.seq, nil
		}
		v, err := rgx.Compile(p.node)
		if err != nil {
			return nil, err
		}
		seq, _ := sequentialEVA(v.ToExtended())
		return seq, nil
	case opUnion:
		ops := make([]*eva.EVA, len(p.subs))
		for i, s := range p.subs {
			var err error
			if ops[i], err = l.lower(s); err != nil {
				return nil, err
			}
		}
		return eva.UnionAll(ops...)
	case opJoin:
		// Fold in plan order: the optimizer has already put the smallest
		// estimated operands first, so the intermediate products stay small.
		acc, err := l.lower(p.subs[0])
		if err != nil {
			return nil, err
		}
		for _, s := range p.subs[1:] {
			op, err := l.lower(s)
			if err != nil {
				return nil, err
			}
			if acc, err = eva.Join(acc, op); err != nil {
				return nil, err
			}
		}
		return acc, nil
	default: // opProject
		// Project's soundness argument needs a sequential input: on a
		// non-sequential automaton (a join below), restricting markers could
		// turn an invalid run valid and invent mappings. The sequentialized
		// form is memoized under its own key so sibling projections of the
		// same subexpression pay the status product once.
		seqKey := p.subs[0].key() + "\x00seq"
		sub, ok := l.memo[seqKey]
		if !ok {
			var err error
			if sub, err = l.lower(p.subs[0]); err != nil {
				return nil, err
			}
			if !sub.IsSequential() {
				sub = sub.Sequentialize().Trim()
			}
			l.memo[seqKey] = sub
		}
		return eva.Project(sub, p.keep...)
	}
}
