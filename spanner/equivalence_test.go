package spanner_test

import (
	"math/rand"
	"reflect"
	"testing"

	"spanners/internal/gen"
	"spanners/internal/rgx"
	"spanners/spanner"
)

// TestStrictLazyEquivalence is the determinization-equivalence property
// test: compiling the same pattern with strict and lazy determinization
// must yield identical mapping sets and identical counts on every
// document. Patterns cover the paper's running example, the
// nested-variable worst case, and random formulas (including
// non-sequential ones); documents come from the gen workload generators.
func TestStrictLazyEquivalence(t *testing.T) {
	docs := [][]byte{
		nil,
		gen.Figure1Doc(),
		gen.Contacts(8, 3),
		gen.RandomDoc(64, "ab", 5),
		gen.LogDoc(2, 9),
	}

	patterns := []string{
		gen.Figure1Pattern(),
		gen.NestedPattern(2),
		`(!x{a})*b`,
		`.*!w{\w+}.*`,
	}
	rng := rand.New(rand.NewSource(123))
	for i := 0; i < 20; i++ {
		patterns = append(patterns, gen.RandomRGX(rng, 3, []string{"x", "y"}, "ab").String())
	}

	for _, p := range patterns {
		strict, err := spanner.Compile(p, spanner.WithStrict())
		if err != nil {
			t.Fatalf("strict compile %q: %v", p, err)
		}
		lazy, err := spanner.Compile(p, spanner.WithLazy())
		if err != nil {
			t.Fatalf("lazy compile %q: %v", p, err)
		}
		for _, doc := range docs {
			sCnt, sExact := strict.Count(doc)
			lCnt, lExact := lazy.Count(doc)
			if sCnt != lCnt || sExact != lExact {
				t.Fatalf("pattern %q doc %.40q: strict count %d (%v), lazy count %d (%v)",
					p, doc, sCnt, sExact, lCnt, lExact)
			}
			// Output-heavy pattern/document pairs (nested variables produce
			// Ω(|d|^ℓ) mappings) are compared by count only; full mapping
			// sets are compared whenever enumeration is tractable.
			if !sExact || sCnt > 20000 {
				continue
			}
			sKeys := collectKeys(strict, doc)
			lKeys := collectKeys(lazy, doc)
			if !reflect.DeepEqual(sKeys, lKeys) {
				t.Fatalf("pattern %q doc %.40q: strict %d mappings, lazy %d mappings\nstrict: %v\nlazy: %v",
					p, doc, len(sKeys), len(lKeys), sKeys, lKeys)
			}
			if sCnt != uint64(len(sKeys)) {
				t.Fatalf("pattern %q doc %.40q: count %d disagrees with enumeration %d",
					p, doc, sCnt, len(sKeys))
			}
			if strict.IsEmpty(doc) != lazy.IsEmpty(doc) {
				t.Fatalf("pattern %q doc %.40q: IsEmpty disagrees", p, doc)
			}
		}
		// Lazy never mints more subset states than strict materializes.
		if ls, ss := lazy.Stats().DetStates, strict.Stats().DetStates; ls > ss {
			t.Fatalf("pattern %q: lazy discovered %d states, strict has %d", p, ls, ss)
		}
	}
}

// TestFacadeMatchesReferenceSemantics checks the facade end-to-end against
// the exhaustive Table 1 interpreter on random formulas — the same
// differential oracle the core tests use, but driven through the public
// API.
func TestFacadeMatchesReferenceSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(321))
	docs := [][]byte{nil, []byte("a"), []byte("ab"), []byte("ba"), []byte("aab")}
	for i := 0; i < 40; i++ {
		node := gen.RandomRGX(rng, 3, []string{"x", "y"}, "ab")
		s, err := spanner.CompileNode(node)
		if err != nil {
			t.Fatal(err)
		}
		for _, doc := range docs {
			want, err := rgx.Evaluate(node, doc)
			if err != nil {
				t.Fatal(err)
			}
			keys := collectKeys(s, doc)
			if len(keys) != want.Len() {
				t.Fatalf("case %d (%s) doc %q: facade %d mappings, reference %d",
					i, node, doc, len(keys), want.Len())
			}
			for _, k := range keys {
				if !want.ContainsKey(shiftKeyTo1Based(t, k)) {
					t.Fatalf("case %d (%s) doc %q: facade emitted %q not in reference set",
						i, node, doc, k)
				}
			}
		}
	}
}

// shiftKeyTo1Based converts a facade Match key (0-based offsets) into the
// model.Mapping key convention (1-based positions).
func shiftKeyTo1Based(t *testing.T, key string) string {
	t.Helper()
	out := make([]byte, 0, len(key))
	i := 0
	for i < len(key) {
		// copy "var=[" verbatim
		j := i
		for key[j] != '[' {
			j++
		}
		j++
		out = append(out, key[i:j]...)
		// start
		k := j
		for key[k] != ',' {
			k++
		}
		start := atoi(key[j:k])
		// end
		l := k + 1
		for key[l] != ')' {
			l++
		}
		end := atoi(key[k+1 : l])
		out = appendInt(out, start+1)
		out = append(out, ',')
		out = appendInt(out, end+1)
		out = append(out, ')')
		i = l + 1
		if i < len(key) && key[i] == '|' {
			out = append(out, '|')
			i++
		}
	}
	return string(out)
}

func atoi(s string) int {
	n := 0
	for i := 0; i < len(s); i++ {
		n = n*10 + int(s[i]-'0')
	}
	return n
}

func appendInt(b []byte, n int) []byte {
	if n >= 10 {
		b = appendInt(b, n/10)
	}
	return append(b, byte('0'+n%10))
}
