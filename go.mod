module spanners

go 1.24.0
